#!/usr/bin/env python3
"""Track reproduced bench numbers across commits (ISSUE 8).

Stdlib-only. Each CI build appends one record per run of the bench
harnesses into ``bench/trajectory.jsonl``:

    {"sha": "<git sha>", "timestamp": "<ISO-8601 UTC>",
     "benches": {"<stem>": {"<case>": {"<field>": <number>, ...}}}}

built from the machine-readable ``BENCH_<stem>.json`` artifacts the
harnesses write next to their stdout tables. The trajectory gives every
reproduced figure/table a history, so a number drifting over weeks is
visible even when no single PR trips a gate.

Modes:
    append  — record the BENCH_*.json files of the current build
    compare — per-metric delta table between two recorded shas
    gate    — fail when a declared key metric regresses vs the median
              of recent records (tools/bench_key_metrics.json)

Usage:
    python3 tools/bench_trajectory.py append [--sha SHA] [BENCH.json ...]
    python3 tools/bench_trajectory.py compare SHA1 SHA2
    python3 tools/bench_trajectory.py gate [BENCH.json ...]

Exit codes: 0 ok, 1 regression (gate) / sha not found (compare),
2 usage or IO error.
"""

import argparse
import datetime
import glob
import json
import subprocess
import sys


def die(msg):
    print(f"bench_trajectory: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        die(f"cannot read {path}: {e}")


def load_trajectory(path):
    """All records, oldest first. A missing file is an empty history."""
    records = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError as e:
                    die(f"{path}:{lineno}: bad record: {e}")
    except OSError:
        pass
    return records


def collect_benches(paths):
    """BENCH_*.json files -> {stem: {case: {field: number}}}."""
    if not paths:
        paths = sorted(glob.glob("BENCH_*.json"))
    if not paths:
        die("no BENCH_*.json files given or found in the working "
            "directory")
    benches = {}
    for path in paths:
        doc = load_json(path)
        stem = doc.get("bench")
        cases = doc.get("cases")
        if not isinstance(stem, str) or not isinstance(cases, list):
            die(f"{path}: not a bench report (needs 'bench' + 'cases')")
        by_case = {}
        for case in cases:
            name = case.get("name", "")
            by_case[name] = {
                k: v for k, v in case.items()
                if k != "name" and isinstance(v, (int, float))
            }
        benches[stem] = by_case
    return benches


def git_sha():
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        die("not in a git checkout; pass --sha explicitly")


def find_record(records, sha):
    """Latest record whose sha starts with `sha` (prefix match)."""
    for rec in reversed(records):
        if rec.get("sha", "").startswith(sha):
            return rec
    return None


def metric_value(record, bench, case, field):
    return (record.get("benches", {}).get(bench, {}).get(case, {})
            .get(field))


def cmd_append(args):
    benches = collect_benches(args.bench_files)
    record = {
        "sha": args.sha or git_sha(),
        "timestamp": args.timestamp or
            datetime.datetime.now(datetime.timezone.utc)
            .strftime("%Y-%m-%dT%H:%M:%SZ"),
        "benches": benches,
    }
    with open(args.trajectory, "a", encoding="utf-8") as f:
        f.write(json.dumps(record, sort_keys=True) + "\n")
    ncases = sum(len(c) for c in benches.values())
    print(f"appended {record['sha'][:12]} ({len(benches)} benches, "
          f"{ncases} cases) -> {args.trajectory}")
    return 0


def cmd_compare(args):
    records = load_trajectory(args.trajectory)
    if not records:
        die(f"{args.trajectory} is empty or missing")
    a = find_record(records, args.sha1)
    b = find_record(records, args.sha2)
    missing = [s for s, r in ((args.sha1, a), (args.sha2, b)) if r is None]
    if missing:
        known = sorted({r.get("sha", "?")[:12] for r in records})
        print(f"bench_trajectory: sha(s) not recorded: {missing} "
              f"(known: {known})", file=sys.stderr)
        return 1

    print(f"{a['sha'][:12]} ({a.get('timestamp', '?')}) vs "
          f"{b['sha'][:12]} ({b.get('timestamp', '?')})")
    header = (f"  {'bench/case/field':<52}{'old':>12}{'new':>12}"
              f"{'delta':>10}")
    print(header)
    shown = 0
    for bench in sorted(set(a["benches"]) | set(b["benches"])):
        cases = (set(a["benches"].get(bench, {})) |
                 set(b["benches"].get(bench, {})))
        for case in sorted(cases):
            fields = (set(a["benches"].get(bench, {}).get(case, {})) |
                      set(b["benches"].get(bench, {}).get(case, {})))
            for field in sorted(fields):
                va = metric_value(a, bench, case, field)
                vb = metric_value(b, bench, case, field)
                if args.changed_only and va == vb:
                    continue
                label = f"{bench}/{case}/{field}"
                sa = "-" if va is None else f"{va:g}"
                sb = "-" if vb is None else f"{vb:g}"
                if va not in (None, 0) and vb is not None:
                    delta = f"{100.0 * (vb - va) / abs(va):+.1f}%"
                else:
                    delta = "-"
                print(f"  {label:<52}{sa:>12}{sb:>12}{delta:>10}")
                shown += 1
    if shown == 0:
        print("  (no differing metrics)")
    return 0


def median(values):
    vals = sorted(values)
    n = len(vals)
    mid = n // 2
    return vals[mid] if n % 2 else (vals[mid - 1] + vals[mid]) / 2.0


def cmd_gate(args):
    decl = load_json(args.key_metrics)
    metrics = decl.get("metrics", [])
    if not metrics:
        die(f"{args.key_metrics} declares no metrics")
    window = int(decl.get("window", 5))

    current = collect_benches(args.bench_files)
    history = load_trajectory(args.trajectory)

    failures = []
    for m in metrics:
        bench, case, field = m["bench"], m["case"], m["field"]
        direction = m.get("direction", "lower")
        max_pct = float(m.get("max_regress_pct", 0.0))
        label = f"{bench}/{case}/{field}"

        cur = current.get(bench, {}).get(case, {}).get(field)
        if cur is None:
            failures.append(f"{label}: missing from current bench output")
            continue

        prior = [v for v in
                 (metric_value(r, bench, case, field) for r in history)
                 if v is not None][-window:]
        if not prior:
            print(f"ok: {label} = {cur:g} (no history yet)")
            continue
        base = median(prior)

        if direction == "exact":
            bad = cur != base
            limit = f"= {base:g}"
        elif direction == "higher":
            floor = base * (1.0 - max_pct / 100.0)
            bad = cur < floor
            limit = f">= {floor:g}"
        else:  # lower
            ceil = base * (1.0 + max_pct / 100.0)
            bad = cur > ceil
            limit = f"<= {ceil:g}"
        if bad:
            failures.append(
                f"{label}: {cur:g} violates {limit} "
                f"(median of last {len(prior)}: {base:g}, "
                f"direction {direction})")
        else:
            print(f"ok: {label} = {cur:g} ({limit}, "
                  f"median of last {len(prior)}: {base:g})")

    if failures:
        print("bench trajectory regression:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--trajectory", default="bench/trajectory.jsonl",
                    help="history file (default bench/trajectory.jsonl)")
    sub = ap.add_subparsers(dest="mode", required=True)

    p = sub.add_parser("append", help="record this build's BENCH files")
    p.add_argument("bench_files", nargs="*", metavar="BENCH.json")
    p.add_argument("--sha", help="commit id (default: git rev-parse HEAD)")
    p.add_argument("--timestamp", help="override the UTC timestamp")
    p.set_defaults(fn=cmd_append)

    p = sub.add_parser("compare", help="delta table between two shas")
    p.add_argument("sha1")
    p.add_argument("sha2")
    p.add_argument("--changed-only", action="store_true",
                   help="hide metrics with identical values")
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("gate", help="fail on key-metric regression")
    p.add_argument("bench_files", nargs="*", metavar="BENCH.json")
    p.add_argument("--key-metrics",
                   default="tools/bench_key_metrics.json")
    p.set_defaults(fn=cmd_gate)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
