#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file produced by the simulator.

Stdlib-only structural validator for CI: parses the file, checks the
trace-event invariants the obs layer promises (docs/observability.md),
and optionally requires specific categories to be present. A --require
token matches either a category ("noc") or an event-name prefix
("dma" for the dma.load/dma.store spans in category "mem"), so subsystem
activity can be required even when it shares a category.

Usage:
    python3 tools/check_trace.py TRACE.json [--require TOKEN ...]

Exit codes: 0 = valid, 1 = violation found, 2 = unreadable input.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C", "M"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    return 1


def check(path, required_cats):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_trace: cannot read {path}: {e}", file=sys.stderr)
        return 2

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail("top level must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return fail("'traceEvents' must be an array")
    if not events:
        return fail("trace contains no events")

    seen_cats = set()
    seen_name_prefixes = set()
    counts = {}
    for i, ev in enumerate(events):
        where = f"event[{i}]"
        if not isinstance(ev, dict):
            return fail(f"{where} is not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            return fail(f"{where} has unexpected phase {ph!r}")
        counts[ph] = counts.get(ph, 0) + 1
        if "name" not in ev or not isinstance(ev["name"], str):
            return fail(f"{where} lacks a string 'name'")
        if ph == "M":
            continue  # metadata records carry no ts/cat
        for key in ("pid", "tid", "ts"):
            if not isinstance(ev.get(key), int):
                return fail(f"{where} ({ev['name']}) lacks integer {key!r}")
        if ev["ts"] < 0:
            return fail(f"{where} ({ev['name']}) has negative ts")
        cat = ev.get("cat")
        if not isinstance(cat, str) or not cat:
            return fail(f"{where} ({ev['name']}) lacks a category")
        seen_cats.add(cat)
        seen_name_prefixes.add(ev["name"].split(".", 1)[0])
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, int) or dur < 0:
                return fail(
                    f"{where} ({ev['name']}) 'X' needs non-negative dur")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            return fail(f"{where} ({ev['name']}) 'C' needs args")

    missing = [c for c in required_cats
               if c not in seen_cats and c not in seen_name_prefixes]
    if missing:
        return fail(
            f"required categories/name-prefixes absent: {missing} "
            f"(categories: {sorted(seen_cats)}, prefixes: "
            f"{sorted(seen_name_prefixes)})")

    phases = ", ".join(f"{p}:{n}" for p, n in sorted(counts.items()))
    print(f"check_trace: OK: {len(events)} events ({phases}), "
          f"categories {sorted(seen_cats)}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--require", nargs="*", default=[],
                    metavar="TOKEN",
                    help="categories or event-name prefixes that must "
                         "appear (e.g. sim noc hyp dma)")
    args = ap.parse_args()
    sys.exit(check(args.trace, args.require))


if __name__ == "__main__":
    main()
