#!/usr/bin/env python3
"""vnpu-lint: repo-specific static analysis for the vNPU simulator.

Machine-enforces the determinism contracts that docs/sim_kernel.md and
docs/observability.md state in prose (see docs/static_analysis.md for
the rule catalog and the policy around suppressions):

  * no nondeterminism sources in library code (rand, wall clock,
    unordered-container iteration),
  * no allocation or I/O inside annotated `// vnpu-lint: hot-path`
    regions,
  * no stdout writes from library code (the byte-identity contract),
  * trace/profile emission only through the gated VNPU_TRACE /
    VNPU_PROF forms,
  * include-guard naming and include hygiene.

Stdlib-only by design: the tool must run on a bare CI image and as a
ctest with no dependencies beyond python3.

Usage:
    vnpu_lint.py [--json] [--list-rules] [--rules r1,r2] PATH...

Exit codes: 0 = clean, 1 = unsuppressed findings, 2 = usage/IO error.

Annotations (inside C++ comments):
    // vnpu-lint: allow(rule[, rule...])   suppress on this line
    // vnpu-lint: allow-next-line(rule[, ...])  suppress on the next line
    // vnpu-lint: allow-file(rule[, ...])  suppress in the whole file
    // vnpu-lint: hot-path                 rest of the enclosing braced
                                           block is a hot-path region
"""

import argparse
import json
import os
import re
import sys

LINT_VERSION = 1

# Directories skipped while walking (explicit file arguments are always
# scanned, which is how the fixture self-tests lint deliberately broken
# files).
SKIP_DIR_NAMES = {"lint_fixtures", "build", ".git", "reference"}

CXX_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "snippet")

    def __init__(self, path, line, rule, message, snippet):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.snippet = snippet

    def as_dict(self):
        return {
            "file": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "snippet": self.snippet,
        }


class SourceFile:
    """A lexed C++ source file: per-line code with comments and
    string/char literal bodies blanked (so token rules cannot match
    inside them), the comment text per line (for annotations), and the
    brace depth at the start of every line (for region tracking).

    This is the "AST-lite" layer: enough structure for region- and
    scope-aware rules without a real parser.
    """

    def __init__(self, path, display_path, text):
        self.path = path
        self.display_path = display_path
        self.raw_lines = text.split("\n")
        self.code_lines = []      # comments/strings blanked
        self.comment_lines = []   # comment text only, per line
        self.depth_at_line = []   # brace depth at start of each line
        self.hot_path_lines = set()
        self.allow = {}           # line -> set(rule) or {"*"}
        self.allow_file = set()   # rules suppressed file-wide
        self._lex(text)
        self._parse_annotations()
        self._mark_hot_paths()

    def _lex(self, text):
        code = []
        comment = []
        depth = 0
        self.depth_at_line.append(0)
        i = 0
        n = len(text)
        state = "code"  # code | line_comment | block_comment | str | chr
        cur_code = []
        cur_comment = []
        while i < n:
            c = text[i]
            nxt = text[i + 1] if i + 1 < n else ""
            if c == "\n":
                code.append("".join(cur_code))
                comment.append("".join(cur_comment))
                cur_code, cur_comment = [], []
                if state == "line_comment":
                    state = "code"
                self.depth_at_line.append(depth)
                i += 1
                continue
            if state == "code":
                if c == "/" and nxt == "/":
                    state = "line_comment"
                    cur_code.append("  ")
                    i += 2
                    continue
                if c == "/" and nxt == "*":
                    state = "block_comment"
                    cur_code.append("  ")
                    i += 2
                    continue
                if c == '"':
                    # Raw strings R"(...)" keep their parens out of the
                    # code view too; treat them like plain strings with
                    # the delimiter scan.
                    if cur_code and cur_code[-1:] == ["R"]:
                        j = text.find("(", i)
                        m = re.match(r'R?"([^(\s"]*)\(', text[i - 1 : i + 32])
                        delim = m.group(1) if m else ""
                        close = ')' + delim + '"'
                        end = text.find(close, i + 1)
                        if end == -1:
                            end = n - 1
                        for k in range(i, min(end + len(close), n)):
                            cur_code.append(" ")
                            if text[k] == "\n":
                                code.append("".join(cur_code))
                                comment.append("".join(cur_comment))
                                cur_code, cur_comment = [], []
                                self.depth_at_line.append(depth)
                        i = end + len(close)
                        cur_code.append('"')
                        continue
                    state = "str"
                    cur_code.append('"')
                    i += 1
                    continue
                if c == "'":
                    state = "chr"
                    cur_code.append("'")
                    i += 1
                    continue
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth = max(0, depth - 1)
                cur_code.append(c)
                i += 1
                continue
            if state in ("line_comment", "block_comment"):
                if state == "block_comment" and c == "*" and nxt == "/":
                    state = "code"
                    i += 2
                    continue
                cur_comment.append(c)
                cur_code.append(" ")
                i += 1
                continue
            # string / char literal
            if c == "\\":
                cur_code.append("  ")
                i += 2
                continue
            if (state == "str" and c == '"') or (state == "chr" and c == "'"):
                state = "code"
                cur_code.append(c)
                i += 1
                continue
            cur_code.append(" ")
            i += 1
        code.append("".join(cur_code))
        comment.append("".join(cur_comment))
        self.code_lines = code
        self.comment_lines = comment

    _ANNOT_RE = re.compile(
        r"vnpu-lint:\s*(allow-file|allow-next-line|allow|hot-path)"
        r"(?:\(([^)]*)\))?")

    def _parse_annotations(self):
        self._hot_path_marks = []
        for ln, comment in enumerate(self.comment_lines, start=1):
            if "vnpu-lint" not in comment:
                continue
            for m in self._ANNOT_RE.finditer(comment):
                kind, args = m.group(1), m.group(2)
                if kind == "hot-path":
                    self._hot_path_marks.append(ln)
                    continue
                rules = {r.strip() for r in (args or "").split(",")
                         if r.strip()}
                if not rules:
                    rules = {"*"}
                if kind == "allow":
                    self.allow.setdefault(ln, set()).update(rules)
                elif kind == "allow-next-line":
                    self.allow.setdefault(ln + 1, set()).update(rules)
                else:
                    self.allow_file.update(rules)

    def _mark_hot_paths(self):
        """A `hot-path` mark covers the rest of its enclosing braced
        block: every following line whose start-depth stays >= the depth
        at the line after the mark."""
        nlines = len(self.code_lines)
        for mark in self._hot_path_marks:
            # Depth just after the mark line (its own braces included).
            if mark < nlines:
                region_depth = self.depth_at_line[mark]
            else:
                region_depth = self.depth_at_line[-1]
            if region_depth == 0:
                continue  # file-scope mark: meaningless, ignore
            ln = mark + 1
            while ln <= nlines:
                if self.depth_at_line[ln - 1] < region_depth:
                    break
                self.hot_path_lines.add(ln)
                ln += 1

    def suppressed(self, line, rule):
        if rule in self.allow_file or "*" in self.allow_file:
            return True
        rules = self.allow.get(line)
        return rules is not None and (rule in rules or "*" in rules)

    def enclosing_function_start(self, line):
        """Heuristic start of the function containing `line`: the
        nearest preceding column-0 `}` (end of the previous function)
        or identifier at column 0 (this codebase puts function names at
        column 0, return type on the previous line)."""
        ln = line - 1
        start = 1
        while ln >= 1:
            code = self.code_lines[ln - 1]
            if code.startswith("}"):
                return ln + 1
            if re.match(r"[A-Za-z_~]", code) and ln < line:
                start = ln
                if "(" in code:
                    return ln
            ln -= 1
        return start


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

RULES = {}


def rule(rule_id, description):
    def deco(fn):
        RULES[rule_id] = (description, fn)
        return fn
    return deco


def is_library(sf):
    """True for simulator library code: anything under a src/ dir."""
    parts = sf.display_path.replace("\\", "/").split("/")
    return "src" in parts


def in_obs(sf):
    parts = sf.display_path.replace("\\", "/").split("/")
    return "obs" in parts


def is_header(sf):
    return sf.display_path.endswith((".h", ".hpp"))


def findings_for_tokens(sf, patterns, rule_id, message_fn, lines=None):
    out = []
    line_iter = lines if lines is not None else range(
        1, len(sf.code_lines) + 1)
    for ln in line_iter:
        code = sf.code_lines[ln - 1]
        for name, pat in patterns:
            if pat.search(code):
                out.append(Finding(sf.display_path, ln, rule_id,
                                   message_fn(name),
                                   sf.raw_lines[ln - 1].strip()))
    return out


# --- nondet ----------------------------------------------------------------

NONDET_PATTERNS = [
    # `std::`-qualified calls must still match, so ':' is deliberately
    # NOT in the lookbehinds; '.'/'>' exclude member calls.
    ("rand()", re.compile(r"(?<![\w.>])s?rand\s*\(")),
    ("rand_r()", re.compile(r"(?<![\w.>])rand_r\s*\(")),
    ("std::random_device", re.compile(r"random_device")),
    ("wall clock (time())", re.compile(r"(?<![\w.>])time\s*\(")),
    ("wall clock (clock())", re.compile(r"(?<![\w.>])clock\s*\(")),
    ("wall clock (gettimeofday)", re.compile(r"gettimeofday")),
    ("wall clock (system_clock)", re.compile(r"system_clock")),
    ("wall clock (steady_clock)", re.compile(r"steady_clock")),
    ("wall clock (high_resolution_clock)",
     re.compile(r"high_resolution_clock")),
    ("environment read (getenv)", re.compile(r"(?<![\w.>])getenv\s*\(")),
]


@rule("nondet",
      "no nondeterminism sources (rand, wall clock, getenv) in library "
      "code — simulation decisions must be pure functions of their "
      "inputs (docs/sim_kernel.md)")
def check_nondet(sf):
    if not is_library(sf):
        return []
    return findings_for_tokens(
        sf, NONDET_PATTERNS, "nondet",
        lambda name: "nondeterminism source in library code: %s" % name)


# --- unordered-iter --------------------------------------------------------

UNORDERED_DECL_RE = re.compile(r"unordered_(?:map|set)\s*<")
IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def collect_unordered_names(sf, registry):
    """Record identifiers declared with an unordered container type.
    Handles declarations split across lines (type on one line, name on
    the next), the dominant style in this codebase."""
    text = "\n".join(sf.code_lines)
    for m in UNORDERED_DECL_RE.finditer(text):
        # Walk the template argument list to its matching '>'.
        i = m.end() - 1
        depth = 0
        n = len(text)
        while i < n:
            if text[i] == "<":
                depth += 1
            elif text[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        rest = text[i + 1 : i + 200]
        im = IDENT_RE.search(rest)
        if im and rest[: im.start()].strip() in ("", "&", "*", "const"):
            name = im.group(0)
            if name not in ("const",):
                registry.add(name)


RANGE_FOR_RE = re.compile(r"for\s*\([^;()]*:\s*\*?([A-Za-z_][\w.\->]*)\s*\)")
BEGIN_ITER_RE = re.compile(r"([A-Za-z_]\w*)\s*\.\s*(?:begin|cbegin)\s*\(")


@rule("unordered-iter",
      "no iteration over unordered containers in library code — "
      "iteration order is implementation-defined and breaks "
      "bit-reproducibility (docs/sim_kernel.md)")
def check_unordered_iter(sf, registry=None):
    if not is_library(sf) or not registry:
        return []
    out = []
    for ln in range(1, len(sf.code_lines) + 1):
        code = sf.code_lines[ln - 1]
        names = set()
        m = RANGE_FOR_RE.search(code)
        if m:
            tail = m.group(1).split(".")[-1].split("->")[-1]
            names.add(tail)
        for bm in BEGIN_ITER_RE.finditer(code):
            names.add(bm.group(1))
        for name in names:
            if name in registry:
                out.append(Finding(
                    sf.display_path, ln, "unordered-iter",
                    "iteration over unordered container '%s': order is "
                    "implementation-defined" % name,
                    sf.raw_lines[ln - 1].strip()))
    return out


# --- hot-path-alloc --------------------------------------------------------

HOT_PATH_PATTERNS = [
    ("operator new", re.compile(r"(?<![\w:])new\s+[A-Za-z_(]")),
    ("operator delete", re.compile(r"(?<![\w:])delete\s")),
    ("malloc family", re.compile(r"(?<![\w:.])(?:malloc|calloc|realloc|"
                                 r"free)\s*\(")),
    ("make_unique/make_shared",
     re.compile(r"make_(?:unique|shared)\s*<")),
    ("container growth (push_back/emplace_back)",
     re.compile(r"\.(?:push_back|emplace_back|emplace)\s*\(")),
    ("container growth (resize/reserve)",
     re.compile(r"\.(?:resize|reserve)\s*\(")),
    ("std::string construction", re.compile(
        r"(?:std::string\s*\(|std::to_string\s*\(|ostringstream|"
        r"stringstream)")),
    ("stream I/O", re.compile(
        r"(?:std::cout|std::cerr|std::clog|(?<![\w])f?printf\s*\(|"
        r"fopen\s*\(|[io]?fstream)")),
]


@rule("hot-path-alloc",
      "no allocation or I/O inside '// vnpu-lint: hot-path' regions "
      "(Network::send, event-loop batch, funnel scoring)")
def check_hot_path(sf):
    if not sf.hot_path_lines:
        return []
    return findings_for_tokens(
        sf, HOT_PATH_PATTERNS, "hot-path-alloc",
        lambda name: "%s inside a hot-path region" % name,
        lines=sorted(sf.hot_path_lines))


# --- stdout-io -------------------------------------------------------------

STDOUT_PATTERNS = [
    ("std::cout", re.compile(r"std::cout")),
    ("printf", re.compile(r"(?<![\w])printf\s*\(")),
    ("puts", re.compile(r"(?<![\w:.])puts\s*\(")),
    ("putchar", re.compile(r"(?<![\w:.])putchar\s*\(")),
    ("stdout", re.compile(r"(?<![\w])stdout(?![\w])")),
]


@rule("stdout-io",
      "no stdout writes from library code — harness stdout must stay "
      "byte-identical with observability flags off "
      "(docs/observability.md)")
def check_stdout(sf):
    if not is_library(sf):
        return []
    return findings_for_tokens(
        sf, STDOUT_PATTERNS, "stdout-io",
        lambda name: "stdout write in library code: %s" % name)


# --- ungated-trace ---------------------------------------------------------

TRACE_CALL_RE = re.compile(
    r"(?<![\w])(?:obs::)?(emit_complete|emit_instant|emit_counter|emit)"
    r"\s*\(")
ENABLED_RE = re.compile(r"(?:obs::)?(?:enabled|prof_enabled)\s*\(\s*\)")


@rule("ungated-trace",
      "trace emission outside src/obs must go through VNPU_TRACE or an "
      "explicit obs::enabled() guard — ungated emission breaks the "
      "zero-overhead-when-off contract")
def check_ungated_trace(sf):
    if not is_library(sf) or in_obs(sf):
        return []
    out = []
    for ln in range(1, len(sf.code_lines) + 1):
        code = sf.code_lines[ln - 1]
        m = TRACE_CALL_RE.search(code)
        if not m:
            continue
        if "VNPU_TRACE" in code:
            continue
        # Accept an explicit enabled() guard earlier in the same
        # function (the Network::trace_link_counters pattern).
        start = sf.enclosing_function_start(ln)
        guarded = any(
            ENABLED_RE.search(sf.code_lines[k - 1]) or
            "VNPU_TRACE" in sf.code_lines[k - 1]
            for k in range(start, ln))
        if guarded:
            continue
        out.append(Finding(
            sf.display_path, ln, "ungated-trace",
            "ungated trace emission '%s': wrap in VNPU_TRACE(...) or "
            "guard the block with obs::enabled()" % m.group(1),
            sf.raw_lines[ln - 1].strip()))
    return out


# --- include-guard ---------------------------------------------------------

def expected_guard(display_path):
    """VNPU_<PATH>_H where PATH is relative to the nearest src/
    component if any, else to the repo root."""
    norm = display_path.replace("\\", "/")
    parts = norm.split("/")
    if "src" in parts:
        idx = len(parts) - 1 - parts[::-1].index("src")
        rel = parts[idx + 1 :]
    else:
        rel = [p for p in parts if p not in (".", "")]
    stem = "/".join(rel)
    stem = re.sub(r"\.(h|hpp)$", "", stem)
    return "VNPU_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H"


@rule("include-guard",
      "headers use '#ifndef VNPU_<PATH>_H' include guards matching "
      "their path (e.g. src/sim/task_pool.h -> VNPU_SIM_TASK_POOL_H)")
def check_include_guard(sf):
    if not is_header(sf):
        return []
    want = expected_guard(sf.display_path)
    ifndef_re = re.compile(r"^\s*#\s*ifndef\s+(\w+)")
    define_re = re.compile(r"^\s*#\s*define\s+(\w+)\s*$")
    guard = None
    guard_line = None
    for ln, code in enumerate(sf.code_lines, start=1):
        m = ifndef_re.match(code)
        if m:
            guard = m.group(1)
            guard_line = ln
            break
        if code.strip() and not code.lstrip().startswith("#"):
            break
    if guard is None:
        return [Finding(sf.display_path, 1, "include-guard",
                        "missing include guard (expected %s)" % want, "")]
    out = []
    if guard != want:
        out.append(Finding(
            sf.display_path, guard_line, "include-guard",
            "include guard '%s' does not match path (expected %s)"
            % (guard, want),
            sf.raw_lines[guard_line - 1].strip()))
        return out
    next_ln = guard_line + 1
    if next_ln > len(sf.code_lines) or not re.match(
            define_re, sf.code_lines[next_ln - 1]) or \
            define_re.match(sf.code_lines[next_ln - 1]).group(1) != want:
        out.append(Finding(
            sf.display_path, next_ln, "include-guard",
            "'#define %s' must immediately follow the #ifndef" % want,
            sf.raw_lines[min(next_ln, len(sf.raw_lines)) - 1].strip()))
    return out


# --- include-order ---------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]')

C_COMPAT_HEADERS = {
    "assert.h", "ctype.h", "errno.h", "float.h", "inttypes.h",
    "limits.h", "locale.h", "math.h", "setjmp.h", "signal.h",
    "stdarg.h", "stddef.h", "stdint.h", "stdio.h", "stdlib.h",
    "string.h", "time.h", "uchar.h", "wchar.h", "wctype.h",
}


@rule("include-order",
      "project includes use quotes and system includes angle brackets; "
      "includes are sorted within each contiguous block; C++ code uses "
      "<cstdint>-style headers, not <stdint.h>")
def check_include_order(sf):
    out = []
    blocks = []  # list of (style, [(line, path)])
    cur = None
    # Includes are parsed from the raw lines: the lexer blanks string
    # literal bodies, which is exactly where a quoted include path is.
    for ln, raw in enumerate(sf.raw_lines, start=1):
        m = INCLUDE_RE.match(raw)
        if not m:
            # Any interleaved line — blank lines included — ends the
            # current block: the codebase's convention groups includes
            # (own header / system / project) with blank separators and
            # sorts within each group only.
            cur = None
            continue
        style, inc = m.group(1), m.group(2)
        if style == "<" and inc in C_COMPAT_HEADERS:
            out.append(Finding(
                sf.display_path, ln, "include-order",
                "C compatibility header <%s>: use <c%s> instead"
                % (inc, inc[:-2]),
                sf.raw_lines[ln - 1].strip()))
        if style == '"' and ("/" not in inc and not
                             os.path.exists(os.path.join(
                                 os.path.dirname(sf.path), inc))):
            # Quoted include that is neither a project path (dir/file.h)
            # nor a sibling file: likely a system header in quotes.
            out.append(Finding(
                sf.display_path, ln, "include-order",
                '"%s" looks like a system header: use <...>' % inc,
                sf.raw_lines[ln - 1].strip()))
        if cur is None or cur[0] != style:
            cur = (style, [])
            blocks.append(cur)
        cur[1].append((ln, inc))
    for style, entries in blocks:
        paths = [p for _, p in entries]
        if paths != sorted(paths):
            ln = entries[0][0]
            out.append(Finding(
                sf.display_path, ln, "include-order",
                "include block starting here is not sorted "
                "alphabetically", sf.raw_lines[ln - 1].strip()))
    return out


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def iter_files(paths):
    seen = set()
    for p in paths:
        if os.path.isfile(p):
            rp = os.path.realpath(p)
            if rp not in seen:
                seen.add(rp)
                yield p
            continue
        if not os.path.isdir(p):
            raise FileNotFoundError(p)
        for root, dirs, files in os.walk(p):
            dirs[:] = sorted(d for d in dirs if d not in SKIP_DIR_NAMES)
            for f in sorted(files):
                if f.endswith(CXX_EXTENSIONS):
                    fp = os.path.join(root, f)
                    rp = os.path.realpath(fp)
                    if rp not in seen:
                        seen.add(rp)
                        yield fp


def lint_files(file_paths, enabled_rules, repo_root=None):
    sources = []
    unordered_registry = set()
    for path in file_paths:
        try:
            with open(path, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            raise OSError("cannot read %s: %s" % (path, e))
        display = path
        if repo_root:
            try:
                display = os.path.relpath(path, repo_root)
            except ValueError:
                pass
        sf = SourceFile(path, display, text)
        sources.append(sf)
        collect_unordered_names(sf, unordered_registry)

    findings = []
    suppressed = 0
    for sf in sources:
        for rule_id, (_desc, fn) in sorted(RULES.items()):
            if rule_id not in enabled_rules:
                continue
            if rule_id == "unordered-iter":
                raw = fn(sf, registry=unordered_registry)
            else:
                raw = fn(sf)
            for f in raw:
                if sf.suppressed(f.line, f.rule):
                    suppressed += 1
                else:
                    findings.append(f)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, suppressed, len(sources)


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="vnpu_lint",
        description="repo-specific determinism-contract linter")
    ap.add_argument("paths", nargs="*", help="files or directories")
    ap.add_argument("--json", action="store_true",
                    help="machine-readable JSON output")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--rules",
                    help="comma-separated subset of rules to run")
    ap.add_argument("--root", default=None,
                    help="repo root for display paths (default: cwd)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print("%-16s %s" % (rule_id, RULES[rule_id][0]))
        return 0

    if not args.paths:
        ap.print_usage(sys.stderr)
        return 2

    enabled = set(RULES)
    if args.rules:
        enabled = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = enabled - set(RULES)
        if unknown:
            print("vnpu_lint: unknown rule(s): %s" % ", ".join(
                sorted(unknown)), file=sys.stderr)
            return 2

    root = args.root or os.getcwd()
    try:
        files = list(iter_files(args.paths))
        findings, suppressed, nfiles = lint_files(files, enabled, root)
    except (OSError, FileNotFoundError) as e:
        print("vnpu_lint: %s" % e, file=sys.stderr)
        return 2

    if args.json:
        counts = {}
        for f in findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        json.dump({
            "version": LINT_VERSION,
            "files_scanned": nfiles,
            "findings": [f.as_dict() for f in findings],
            "counts": counts,
            "suppressed": suppressed,
        }, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for f in findings:
            print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message))
            if f.snippet:
                print("    %s" % f.snippet)
        print("vnpu_lint: %d file(s), %d finding(s), %d suppressed"
              % (nfiles, len(findings), suppressed))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
