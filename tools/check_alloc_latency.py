#!/usr/bin/env python3
"""Admission-latency regression gate for the mapper funnel (ISSUE 6).

Reads the machine-readable sweep output (``BENCH_sweep_alloc_scale.json``)
and compares the gated cases against the committed baseline
(``tools/alloc_latency_baseline.json``):

* ``us_admit`` may not regress more than ``max_ratio`` (default 2x) over
  the baseline value — wall-clock, so the factor absorbs normal CI host
  jitter while still catching an accidental return to per-candidate
  full-GED scoring (a ~14x cliff).
* admission decisions (``admitted``/``failed``/``mean_ted``) must match
  the baseline exactly: the funnel's contract is bit-identical decisions,
  and those fields are deterministic for a fixed rng seed.

Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("bench_json",
                    help="path to BENCH_sweep_alloc_scale.json")
    ap.add_argument("--baseline",
                    default="tools/alloc_latency_baseline.json")
    ap.add_argument("--max-ratio", type=float, default=2.0,
                    help="fail when us_admit exceeds baseline * ratio")
    args = ap.parse_args()

    bench = {c["name"]: c for c in load(args.bench_json)["cases"]}
    baseline = load(args.baseline)

    failures = []
    for name, base in baseline["cases"].items():
        cur = bench.get(name)
        if cur is None:
            failures.append(f"{name}: missing from bench output")
            continue
        for field in ("admitted", "failed", "mean_ted"):
            if cur.get(field) != base[field]:
                failures.append(
                    f"{name}: {field} changed "
                    f"{base[field]} -> {cur.get(field)} "
                    "(admission decisions must be deterministic)")
        limit = base["us_admit"] * args.max_ratio
        if cur.get("us_admit", float("inf")) > limit:
            failures.append(
                f"{name}: us_admit {cur.get('us_admit')} > "
                f"{limit:.1f} ({args.max_ratio}x baseline "
                f"{base['us_admit']})")
        else:
            print(f"ok: {name} us_admit {cur.get('us_admit')} "
                  f"<= {limit:.1f}")

    if failures:
        print("admission latency regression:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
