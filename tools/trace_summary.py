#!/usr/bin/env python3
"""Summarize a simulator trace (and optionally an admission audit dump).

Stdlib-only. For a Chrome trace-event JSON file, prints per-category
event counts and total span time, the busiest event names, and
per-track span occupancy. With --audit, also summarizes an admission
audit JSONL dump (hyp::AdmissionAuditRing::dump_jsonl).

Usage:
    python3 tools/trace_summary.py TRACE.json [--audit AUDIT.jsonl]
    python3 tools/trace_summary.py --audit AUDIT.jsonl
"""

import argparse
import json
import sys
from collections import defaultdict


def summarize_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    # Accept both the object form ({"traceEvents": [...]}) and the
    # bare-array form of the Chrome trace-event format.
    events = doc.get("traceEvents", []) if isinstance(doc, dict) else doc
    if not events:
        # A trace with --trace but no instrumented activity is legal
        # (e.g. a harness that never runs the simulator); say so
        # instead of printing empty tables.
        print(f"{path}: empty trace (no events recorded)")
        return

    track_names = {}
    cat_count = defaultdict(int)
    cat_dur = defaultdict(int)
    name_count = defaultdict(int)
    name_dur = defaultdict(int)
    track_dur = defaultdict(int)
    span_end = 0
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            # Metadata may lack args entirely; never KeyError on it.
            name = ev.get("args", {}).get("name")
            if ev.get("name") == "thread_name" and name is not None:
                track_names[ev.get("tid")] = name
            continue
        cat = ev.get("cat", "?")
        cat_count[cat] += 1
        name_count[ev.get("name", "?")] += 1
        end = ev.get("ts", 0)
        if ph == "X":
            dur = ev.get("dur", 0)
            cat_dur[cat] += dur
            name_dur[ev.get("name", "?")] += dur
            track_dur[ev.get("tid", 0)] += dur
            end += dur
        span_end = max(span_end, end)

    print(f"{path}: {len(events)} events, trace spans [0, {span_end}] ticks")
    print("\nper category:")
    print(f"  {'cat':<8}{'events':>10}{'span ticks':>14}")
    for cat in sorted(cat_count):
        print(f"  {cat:<8}{cat_count[cat]:>10}{cat_dur[cat]:>14}")

    print("\ntop event names:")
    top = sorted(name_count.items(), key=lambda kv: -kv[1])[:8]
    for name, n in top:
        print(f"  {name:<16}{n:>8} events{name_dur[name]:>14} ticks")

    if span_end > 0 and track_dur:
        print("\nper-track span occupancy:")
        busiest = sorted(track_dur.items(), key=lambda kv: -kv[1])[:8]
        for tid, dur in busiest:
            label = track_names.get(tid, f"core {tid}")
            util = dur / span_end
            print(f"  {label:<16}{dur:>12} ticks  {util:>6.1%}")


def summarize_audit(path):
    entries = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    if not entries:
        print(f"{path}: empty audit log")
        return

    by_strategy = defaultdict(lambda: {"admitted": 0, "rejected": 0,
                                       "ted": 0.0, "cores": 0})
    for e in entries:
        s = by_strategy[e.get("strategy", "?")]
        if e.get("admitted"):
            s["admitted"] += 1
            s["ted"] += e.get("ted", 0)
        else:
            s["rejected"] += 1
        s["cores"] += e.get("requested_cores", 0)

    first, last = entries[0], entries[-1]
    print(f"{path}: {len(entries)} retained decisions "
          f"(seq {first.get('seq')}..{last.get('seq')})")
    print(f"  {'strategy':<12}{'admitted':>10}{'rejected':>10}"
          f"{'mean TED':>10}{'mean cores':>12}")
    for strat in sorted(by_strategy):
        s = by_strategy[strat]
        total = s["admitted"] + s["rejected"]
        mean_ted = s["ted"] / s["admitted"] if s["admitted"] else 0.0
        print(f"  {strat:<12}{s['admitted']:>10}{s['rejected']:>10}"
              f"{mean_ted:>10.1f}{s['cores'] / total:>12.1f}")
    errors = [e for e in entries if e.get("error")]
    if errors:
        print(f"  {len(errors)} entries carry an error, e.g.: "
              f"{errors[-1]['error']}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", nargs="?", help="Chrome trace-event JSON")
    ap.add_argument("--audit", metavar="FILE",
                    help="admission audit JSONL dump")
    args = ap.parse_args()
    if not args.trace and not args.audit:
        ap.error("nothing to do: give a trace file and/or --audit")
    try:
        if args.trace:
            summarize_trace(args.trace)
        if args.audit:
            if args.trace:
                print()
            summarize_audit(args.audit)
    except (OSError, json.JSONDecodeError) as e:
        print(f"trace_summary: {e}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":
    main()
